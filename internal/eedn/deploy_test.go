package eedn

import (
	"math/rand"
	"testing"

	"repro/internal/truenorth"
)

// buildBinaryNet returns a small all-threshold network with weights
// pushed outside the dead zone so deployment is nontrivial.
func buildBinaryNet(t *testing.T, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l1 := NewDense(12, 20, rng)
	l2 := NewDense(20, 8, rng)
	for _, d := range []*Dense{l1, l2} {
		for i := range d.Hidden {
			d.Hidden[i] = float64(rng.Intn(3)-1) * 0.9 // in {-0.9, 0, 0.9}
		}
		for j := range d.Bias {
			d.Bias[j] = (rng.Float64()*2 - 1) * 0.8
		}
	}
	net, err := NewNetwork(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDeployMatchesSoftwareExactly(t *testing.T) {
	net := buildBinaryNet(t, 21)
	dep, err := Deploy(net)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := truenorth.NewSimulator(dep.Model, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		frame := make([]float64, 12)
		for i := range frame {
			frame[i] = float64(rng.Intn(2))
		}
		hw, err := dep.RunPass(sim, frame)
		if err != nil {
			t.Fatal(err)
		}
		sw := net.Forward(frame)
		for j := range sw {
			if hw[j] != sw[j] {
				t.Fatalf("trial %d output %d: hw=%v sw=%v (frame %v)",
					trial, j, hw, sw, frame)
			}
		}
	}
}

func TestDeployRejectsUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Linear layer.
	lin, _ := NewParrotNet(4, 64, rng)
	if _, err := Deploy(lin); err == nil {
		t.Error("linear head should be rejected")
	}
	// Oversized fan-in (two axons per input plus bias exceed a core).
	big := NewDense(200, 8, rng)
	netBig, _ := NewNetwork(big)
	if _, err := Deploy(netBig); err == nil {
		t.Error("fan-in > 128 should be rejected")
	}
	// Conv layer.
	conv, _ := NewConv2D(1, 8, 8, 2, 3, 1, 1, rng)
	head := NewDense(conv.OutDim(), 1, rng)
	netConv, _ := NewNetwork(conv, head)
	if _, err := Deploy(netConv); err == nil {
		t.Error("conv deployment should be rejected")
	}
}

func TestDeployUsageAndLatency(t *testing.T) {
	net := buildBinaryNet(t, 3)
	dep, err := Deploy(net)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Latency != 4 {
		t.Errorf("latency = %d, want 4 (2 per layer)", dep.Latency)
	}
	// 2 layers + 2 splitters + clock = 5 cores.
	if dep.Model.NumCores() != 5 {
		t.Errorf("cores = %d, want 5", dep.Model.NumCores())
	}
	if dep.Usage["eedn/clock"] != 1 {
		t.Errorf("usage: %v", dep.Usage)
	}
}

func TestDeployRunPassErrors(t *testing.T) {
	net := buildBinaryNet(t, 3)
	dep, _ := Deploy(net)
	sim, _ := truenorth.NewSimulator(dep.Model, 1)
	if _, err := dep.RunPass(sim, make([]float64, 3)); err == nil {
		t.Error("wrong frame size should error")
	}
}

func BenchmarkDeployedPass(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l1 := NewDense(100, 120, rng)
	l2 := NewDense(120, 18, rng)
	for _, d := range []*Dense{l1, l2} {
		for i := range d.Hidden {
			d.Hidden[i] = float64(rng.Intn(3)-1) * 0.9
		}
	}
	net, _ := NewNetwork(l1, l2)
	dep, err := Deploy(net)
	if err != nil {
		b.Fatal(err)
	}
	sim, _ := truenorth.NewSimulator(dep.Model, 1)
	frame := make([]float64, 100)
	for i := range frame {
		frame[i] = float64(rng.Intn(2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = dep.RunPass(sim, frame)
	}
}
