package dataset

import (
	"math"
	"testing"

	"repro/internal/hog"
	"repro/internal/imgproc"
)

func TestBoxIoU(t *testing.T) {
	a := Box{0, 0, 10, 10}
	if got := a.IoU(a); got != 1 {
		t.Errorf("self IoU = %v", got)
	}
	b := Box{10, 10, 10, 10}
	if got := a.IoU(b); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	c := Box{5, 0, 10, 10}
	want := 50.0 / 150.0
	if got := a.IoU(c); math.Abs(got-want) > 1e-12 {
		t.Errorf("half overlap IoU = %v, want %v", got, want)
	}
}

func TestPositiveWindowShape(t *testing.T) {
	g := NewGenerator(1)
	p := g.Positive()
	if p.W != WindowW || p.H != WindowH {
		t.Fatalf("positive window %dx%d", p.W, p.H)
	}
	for _, v := range p.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of range: %v", v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(42).Positive()
	b := NewGenerator(42).Positive()
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different windows")
		}
	}
	c := NewGenerator(43).Positive()
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical windows")
	}
}

// verticalEnergyRatio measures how dominant near-vertical-edge
// orientations are in a window's gradient content: persons should
// exceed clutter on average.
func verticalEnergyRatio(m *imgproc.Image) float64 {
	g := imgproc.ComputeGradient(m)
	var vert, total float64
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			mag, ang := g.MagAngle(x, y)
			total += mag
			// Vertical edges have near-horizontal gradients.
			a := math.Abs(math.Cos(ang))
			if a > math.Cos(math.Pi/6) {
				vert += mag
			}
		}
	}
	if total == 0 {
		return 0
	}
	return vert / total
}

func TestPersonsAreVerticalEdgeDominant(t *testing.T) {
	g := NewGenerator(7)
	var pos, neg float64
	const n = 30
	for i := 0; i < n; i++ {
		pos += verticalEnergyRatio(g.Positive())
		neg += verticalEnergyRatio(g.Negative())
	}
	pos /= n
	neg /= n
	if pos <= neg {
		t.Errorf("positives not vertical-dominant: pos=%v neg=%v", pos, neg)
	}
}

func TestHoGSeparatesClasses(t *testing.T) {
	// A crude centroid classifier on HoG descriptors should separate
	// the synthetic classes well above chance — the premise of every
	// detection experiment downstream.
	g := NewGenerator(3)
	e, err := hog.NewExtractor(hog.Reference())
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	var posD, negD [][]float64
	for i := 0; i < n; i++ {
		d1, err := e.Descriptor(g.Positive())
		if err != nil {
			t.Fatal(err)
		}
		d2, err := e.Descriptor(g.Negative())
		if err != nil {
			t.Fatal(err)
		}
		posD = append(posD, d1)
		negD = append(negD, d2)
	}
	dim := len(posD[0])
	centroidP := make([]float64, dim)
	centroidN := make([]float64, dim)
	for i := 0; i < n/2; i++ {
		for j := 0; j < dim; j++ {
			centroidP[j] += posD[i][j]
			centroidN[j] += negD[i][j]
		}
	}
	correct := 0
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]*2/float64(n)
			s += d * d
		}
		return s
	}
	for i := n / 2; i < n; i++ {
		if dist(posD[i], centroidP) < dist(posD[i], centroidN) {
			correct++
		}
		if dist(negD[i], centroidN) < dist(negD[i], centroidP) {
			correct++
		}
	}
	acc := float64(correct) / float64(n)
	if acc < 0.7 {
		t.Errorf("HoG centroid accuracy = %v, want >= 0.7", acc)
	}
}

func TestSceneGroundTruth(t *testing.T) {
	g := NewGenerator(9)
	s := g.Scene(640, 480, 4, 120, 300)
	if s.Image.W != 640 || s.Image.H != 480 {
		t.Fatalf("scene dims %dx%d", s.Image.W, s.Image.H)
	}
	if len(s.Truth) == 0 {
		t.Fatal("no persons placed")
	}
	for i, b := range s.Truth {
		if b.X < 0 || b.Y < 0 || b.X+b.W > 640 || b.Y+b.H > 480 {
			t.Errorf("truth %d out of bounds: %+v", i, b)
		}
		if b.H < 120 || b.H > 300 {
			t.Errorf("truth %d height %d outside [120,300]", i, b.H)
		}
		if b.W != b.H/2 {
			t.Errorf("truth %d aspect %dx%d", i, b.W, b.H)
		}
		for j := i + 1; j < len(s.Truth); j++ {
			if b.IoU(s.Truth[j]) > 0.05 {
				t.Errorf("truths %d and %d overlap", i, j)
			}
		}
	}
}

func TestSceneZeroPersons(t *testing.T) {
	g := NewGenerator(9)
	s := g.Scene(320, 240, 0, 100, 200)
	if len(s.Truth) != 0 {
		t.Errorf("expected empty truth, got %d", len(s.Truth))
	}
}

func TestTrainSetCounts(t *testing.T) {
	g := NewGenerator(5)
	ts := g.TrainSet(7, 11)
	if len(ts.Positives) != 7 || len(ts.Negatives) != 11 {
		t.Errorf("train set %d/%d", len(ts.Positives), len(ts.Negatives))
	}
}

func TestNegativeImageShape(t *testing.T) {
	g := NewGenerator(5)
	m := g.NegativeImage(300, 200)
	if m.W != 300 || m.H != 200 {
		t.Errorf("negative image %dx%d", m.W, m.H)
	}
}

func BenchmarkPositive(b *testing.B) {
	g := NewGenerator(1)
	for i := 0; i < b.N; i++ {
		_ = g.Positive()
	}
}

func BenchmarkScene640(b *testing.B) {
	g := NewGenerator(1)
	for i := 0; i < b.N; i++ {
		_ = g.Scene(640, 480, 3, 120, 300)
	}
}
