// Frame-sequence scenarios for the temporal detection workload: moving
// pedestrians over a static background, camera pan and jitter, crowds,
// and lighting ramps with night/fog variants. The sequences are built
// for cross-frame reuse testing: the static world (background, clutter,
// blur, noise) is rendered and baked exactly once, and every frame
// re-renders only the moving content on top of a copy, so pixels away
// from motion are bit-identical between frames and a differencing
// detector sees the true dirty regions.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/imgproc"
)

// Frame is one step of a generated sequence: the image, its ground
// truth, and the camera translation relative to the previous frame
// (content obeys new[x, y] = prev[x+PanX, y+PanY] over the overlap;
// zero for static-camera scenarios, and always zero on frame 0).
type Frame struct {
	Image      *imgproc.Image
	Truth      []Box
	PanX, PanY int
}

// PanStep is the camera translation per frame of the "pan" scenario,
// in pixels. It is one 8-pixel cell so the temporal detector's
// integer-cell shift reuse applies; the "jitter" scenario deliberately
// uses non-multiples to exercise the full-recompute fallback.
const PanStep = 8

// SequenceScenarios lists the named scenarios FrameSequence accepts,
// in catalog order.
func SequenceScenarios() []string {
	return []string{
		"static",        // frozen scene: every frame bit-identical
		"walkers",       // two pedestrians translating over a static background
		"walkers-night", // walkers under low light with heavier sensor noise
		"walkers-fog",   // walkers through fog: washed-out, blurred world
		"crowd",         // six pedestrians, denser motion
		"pan",           // static world, camera panning PanStep px/frame (cell-aligned)
		"jitter",        // static world, fractional camera shake (non-cell-aligned)
		"lightramp",     // static scene under a global brightness ramp (all pixels change)
	}
}

// track is one pedestrian's motion state: an integer position advanced
// by a velocity, bounced off the walkable margins.
type track struct {
	w, h   int
	x, y   int
	vx, vy int
	seed   int64 // appearance seed: the silhouette is identical every frame
}

// FrameSequence renders n frames of the named scenario at w x h.
// Sequences are deterministic per generator seed. Unknown scenarios
// return an error (see SequenceScenarios).
func (g *Generator) FrameSequence(scenario string, w, h, n int) ([]Frame, error) {
	if n <= 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("dataset: bad sequence geometry %dx%d x %d frames", w, h, n)
	}
	switch scenario {
	case "static":
		return g.staticSeq(w, h, n), nil
	case "walkers":
		return g.walkerSeq(w, h, n, 2, seqPlain), nil
	case "walkers-night":
		return g.walkerSeq(w, h, n, 2, seqNight), nil
	case "walkers-fog":
		return g.walkerSeq(w, h, n, 2, seqFog), nil
	case "crowd":
		return g.walkerSeq(w, h, n, 6, seqPlain), nil
	case "pan":
		return g.panSeq(w, h, n, PanStep, 0), nil
	case "jitter":
		return g.jitterSeq(w, h, n), nil
	case "lightramp":
		return g.lightRampSeq(w, h, n), nil
	}
	return nil, fmt.Errorf("dataset: unknown sequence scenario %q", scenario)
}

// seqVariant selects the lighting treatment baked into a walker world.
type seqVariant int

const (
	seqPlain seqVariant = iota
	seqNight
	seqFog
)

// bakeWorld renders the immutable part of a scene — background texture,
// clutter, blur, noise, clamp, and any lighting variant — exactly once.
// Frames copy it, so static pixels repeat bit-for-bit.
func (g *Generator) bakeWorld(w, h int, variant seqVariant) *imgproc.Image {
	m := imgproc.New(w, h)
	g.fillBackground(m)
	g.scatterClutter(m, 3+g.rng.Intn(6))
	imgproc.BoxBlur(m, 1)
	switch variant {
	case seqNight:
		// Low light: crush brightness, then heavier sensor noise.
		for i, v := range m.Pix {
			m.Pix[i] = v * 0.3
		}
		g.addNoise(m, 0.05)
	case seqFog:
		// Fog: blend toward a bright haze and soften what remains.
		for i, v := range m.Pix {
			m.Pix[i] = v*0.45 + 0.72*0.55
		}
		imgproc.BoxBlur(m, 2)
		g.addNoise(m, 0.015)
	default:
		g.addNoise(m, 0.02)
	}
	m.Clamp01()
	return m
}

// newTracks places nPersons non-overlapping pedestrians with random
// integer velocities (at least one axis moving) inside the w x h
// walkable area.
func (g *Generator) newTracks(w, h, nPersons int) []track {
	var tracks []track
	for i := 0; i < nPersons; i++ {
		ph := h/2 + g.rng.Intn(max(1, h/3))
		pw := ph / 2
		if pw >= w || ph >= h {
			continue
		}
		t := track{
			w: pw, h: ph,
			x:    g.rng.Intn(w - pw),
			y:    g.rng.Intn(h - ph),
			vx:   g.rng.Intn(7) - 3,
			vy:   g.rng.Intn(3) - 1,
			seed: g.rng.Int63(),
		}
		if t.vx == 0 && t.vy == 0 {
			t.vx = 2
		}
		tracks = append(tracks, t)
	}
	return tracks
}

// advance moves a track one frame, bouncing off the image edges.
func (t *track) advance(w, h int) {
	t.x += t.vx
	t.y += t.vy
	if t.x < 0 {
		t.x, t.vx = 0, -t.vx
	}
	if t.x+t.w > w {
		t.x, t.vx = w-t.w, -t.vx
	}
	if t.y < 0 {
		t.y, t.vy = 0, -t.vy
	}
	if t.y+t.h > h {
		t.y, t.vy = h-t.h, -t.vy
	}
}

// renderTracks draws every track onto a copy of world and returns the
// frame with its truth boxes. Each person re-derives its silhouette
// from its own appearance seed, so a pedestrian looks the same in
// every frame and only its position dirties pixels. A light local blur
// over each (expanded) person box softens the pasted edges without
// touching the rest of the frame.
func renderTracks(world *imgproc.Image, tracks []track, bg float64) Frame {
	m := world.Clone()
	var truth []Box
	for _, t := range tracks {
		pg := &Generator{rng: rand.New(rand.NewSource(t.seed))}
		mx := t.w / 8
		my := t.h / 16
		pg.drawPerson(m, t.x+mx, t.y+my, t.w-2*mx, t.h-2*my, bg)
		blurRect(m, t.x-2, t.y-2, t.w+4, t.h+4, 1)
		truth = append(truth, Box{X: t.x, Y: t.y, W: t.w, H: t.h})
	}
	m.Clamp01()
	return Frame{Image: m, Truth: truth}
}

// blurRect applies an r-radius box blur to the rectangle [x0,x0+w) x
// [y0,y0+h) of m in place, reading neighbors through replicate-clamped
// At. Pixels outside the rectangle are untouched, which keeps the
// dirty footprint of a moving person confined to its (slightly
// expanded) box.
func blurRect(m *imgproc.Image, x0, y0, w, h, r int) {
	if r <= 0 {
		return
	}
	x1, y1 := x0+w, y0+h
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > m.W {
		x1 = m.W
	}
	if y1 > m.H {
		y1 = m.H
	}
	if x0 >= x1 || y0 >= y1 {
		return
	}
	tmp := make([]float64, (x1-x0)*(y1-y0))
	n := float64((2*r + 1) * (2*r + 1))
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			var s float64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					s += m.At(x+dx, y+dy)
				}
			}
			tmp[(y-y0)*(x1-x0)+(x-x0)] = s / n
		}
	}
	for y := y0; y < y1; y++ {
		copy(m.Pix[y*m.W+x0:y*m.W+x1], tmp[(y-y0)*(x1-x0):(y-y0)*(x1-x0)+(x1-x0)])
	}
}

// staticSeq repeats one fixed scene: the degenerate sequence the
// bit-identity contract is stated over.
func (g *Generator) staticSeq(w, h, n int) []Frame {
	world := g.bakeWorld(w, h, seqPlain)
	bg := meanOf(world)
	tracks := g.newTracks(w, h, 2)
	base := renderTracks(world, tracks, bg)
	frames := make([]Frame, n)
	for i := range frames {
		frames[i] = Frame{Image: base.Image.Clone(), Truth: base.Truth}
	}
	return frames
}

// walkerSeq renders pedestrians translating over a static world.
func (g *Generator) walkerSeq(w, h, n, nPersons int, variant seqVariant) []Frame {
	world := g.bakeWorld(w, h, variant)
	bg := meanOf(world)
	tracks := g.newTracks(w, h, nPersons)
	frames := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			for k := range tracks {
				tracks[k].advance(w, h)
			}
		}
		frames = append(frames, renderTracks(world, tracks, bg))
	}
	return frames
}

// clipBox intersects b with the w x h viewport, reporting false when
// nothing remains visible. Ground truth for partially visible
// pedestrians is the visible part, matching a real camera crop.
func clipBox(b Box, w, h int) (Box, bool) {
	if b.X < 0 {
		b.W += b.X
		b.X = 0
	}
	if b.Y < 0 {
		b.H += b.Y
		b.Y = 0
	}
	if b.X+b.W > w {
		b.W = w - b.X
	}
	if b.Y+b.H > h {
		b.H = h - b.Y
	}
	return b, b.W > 0 && b.H > 0
}

// panSeq crops a w x h viewport sliding (stepX, stepY) px/frame across
// a larger static world with baked-in pedestrians. The per-frame pan
// is reported in Frame.PanX/PanY.
func (g *Generator) panSeq(w, h, n, stepX, stepY int) []Frame {
	worldW := w + stepX*(n-1)
	worldH := h + stepY*(n-1)
	world := g.bakeWorld(worldW, worldH, seqPlain)
	bg := meanOf(world)
	tracks := g.newTracks(worldW, worldH, 2+n/8)
	baked := renderTracks(world, tracks, bg)
	frames := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		vx, vy := i*stepX, i*stepY
		var truth []Box
		for _, t := range baked.Truth {
			if b, ok := clipBox(Box{X: t.X - vx, Y: t.Y - vy, W: t.W, H: t.H}, w, h); ok {
				truth = append(truth, b)
			}
		}
		f := Frame{Image: baked.Image.SubImage(vx, vy, w, h), Truth: truth}
		if i > 0 {
			f.PanX, f.PanY = stepX, stepY
		}
		frames = append(frames, f)
	}
	return frames
}

// jitterSeq shakes the viewport over a static world by small
// non-cell-aligned offsets — the fractional-pan case the temporal
// detector must answer with a full recompute.
func (g *Generator) jitterSeq(w, h, n int) []Frame {
	const m = 6 // jitter margin, px
	world := g.bakeWorld(w+2*m, h+2*m, seqPlain)
	bg := meanOf(world)
	tracks := g.newTracks(w+2*m, h+2*m, 2)
	baked := renderTracks(world, tracks, bg)
	frames := make([]Frame, 0, n)
	px, py := m, m
	for i := 0; i < n; i++ {
		// Deterministic shake with odd offsets (never multiples of 8).
		vx := m + []int{0, 3, -1, 5, 1, -3}[i%6]
		vy := m + []int{0, 1, 3, -1, -3, 5}[i%6]
		var truth []Box
		for _, t := range baked.Truth {
			if b, ok := clipBox(Box{X: t.X - vx, Y: t.Y - vy, W: t.W, H: t.H}, w, h); ok {
				truth = append(truth, b)
			}
		}
		f := Frame{Image: baked.Image.SubImage(vx, vy, w, h), Truth: truth}
		if i > 0 {
			f.PanX, f.PanY = vx-px, vy-py
		}
		px, py = vx, vy
		frames = append(frames, f)
	}
	return frames
}

// lightRampSeq dims and brightens a fixed scene frame to frame —
// a global change that leaves no reusable pixels, pinning the
// worst-case path.
func (g *Generator) lightRampSeq(w, h, n int) []Frame {
	world := g.bakeWorld(w, h, seqPlain)
	bg := meanOf(world)
	tracks := g.newTracks(w, h, 2)
	base := renderTracks(world, tracks, bg)
	frames := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		gain := 0.6 + 0.4*float64(i)/float64(max(1, n-1))
		m := base.Image.Clone()
		for k, v := range m.Pix {
			m.Pix[k] = v * gain
		}
		m.Clamp01()
		frames = append(frames, Frame{Image: m, Truth: base.Truth})
	}
	return frames
}
