// Package dataset generates the synthetic pedestrian data that stands
// in for the INRIA Person Dataset (not redistributable offline; see
// DESIGN.md substitutions). The generator is deterministic per seed
// and produces:
//
//   - positive 64x128 windows: articulated person silhouettes (head,
//     torso, two legs, two arms) with randomized pose, contrast
//     polarity, clothing bands, blur and noise over textured
//     backgrounds;
//   - negative windows and full negative images: gradient-rich clutter
//     (texture patches, bars, blobs, ramps) with no people;
//   - test scenes: larger images with zero or more persons at varying
//     scales plus ground-truth boxes, for the sliding-window detection
//     experiments of Figs. 4 and 5.
//
// What matters for the paper's comparisons is that persons are
// coherent, roughly vertical, limb-structured gradient objects while
// negatives are isotropic clutter — the statistics HoG was designed
// around.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/imgproc"
)

// WindowW and WindowH are the detection window dimensions.
const (
	WindowW = 64
	WindowH = 128
)

// Box is an axis-aligned ground-truth or detection rectangle.
type Box struct {
	X, Y, W, H int
}

// IoU returns the intersection-over-union of two boxes.
func (b Box) IoU(o Box) float64 {
	x0 := max(b.X, o.X)
	y0 := max(b.Y, o.Y)
	x1 := min(b.X+b.W, o.X+o.W)
	y1 := min(b.Y+b.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := float64((x1 - x0) * (y1 - y0))
	union := float64(b.W*b.H+o.W*o.H) - inter
	return inter / union
}

// Generator produces deterministic synthetic data.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator seeded for reproducibility.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// fillBackground paints a low-frequency texture plus fine noise.
func (g *Generator) fillBackground(m *imgproc.Image) {
	base := 0.25 + g.rng.Float64()*0.5
	fx := 0.02 + g.rng.Float64()*0.15
	fy := 0.02 + g.rng.Float64()*0.15
	px := g.rng.Float64() * 6
	py := g.rng.Float64() * 6
	amp := 0.05 + g.rng.Float64()*0.15
	noise := 0.01 + g.rng.Float64()*0.04
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			v := base + amp*math.Sin(float64(x)*fx+px)*math.Cos(float64(y)*fy+py)
			v += (g.rng.Float64() - 0.5) * 2 * noise
			m.Set(x, y, v)
		}
	}
}

// fillRect paints a solid rectangle clipped to the image.
func fillRect(m *imgproc.Image, x0, y0, w, h int, v float64) {
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			m.Set(x, y, v)
		}
	}
}

// fillEllipse paints a solid ellipse centered at (cx, cy).
func fillEllipse(m *imgproc.Image, cx, cy, rx, ry int, v float64) {
	if rx <= 0 || ry <= 0 {
		return
	}
	for y := cy - ry; y <= cy+ry; y++ {
		for x := cx - rx; x <= cx+rx; x++ {
			dx := float64(x-cx) / float64(rx)
			dy := float64(y-cy) / float64(ry)
			if dx*dx+dy*dy <= 1 {
				m.Set(x, y, v)
			}
		}
	}
}

// drawPerson paints an articulated silhouette whose bounding box is
// (x0, y0, w, h) in m. Contrast is the person-background brightness
// difference (signed).
func (g *Generator) drawPerson(m *imgproc.Image, x0, y0, w, h int, bg float64) {
	contrast := 0.25 + g.rng.Float64()*0.35
	if g.rng.Intn(2) == 0 {
		contrast = -contrast
	}
	body := bg + contrast
	if body < 0.02 {
		body = 0.02
	}
	if body > 0.98 {
		body = 0.98
	}
	// Proportions relative to the box.
	headR := h / 10
	cx := x0 + w/2
	headCy := y0 + headR + h/40
	torsoTop := headCy + headR
	torsoH := int(float64(h) * 0.38)
	torsoW := int(float64(w) * (0.38 + g.rng.Float64()*0.14))
	legTop := torsoTop + torsoH
	legH := y0 + h - legTop
	legW := torsoW / 2
	legGap := int(float64(legW) * (0.3 + g.rng.Float64()*0.9))

	// Head.
	fillEllipse(m, cx, headCy, headR, headR+h/60, body)
	// Torso.
	fillRect(m, cx-torsoW/2, torsoTop, torsoW, torsoH, body)
	// Arms: vertical bars beside the torso, slightly angled via offset
	// segments.
	armW := max(2, torsoW/4)
	armH := int(float64(torsoH) * (0.8 + g.rng.Float64()*0.3))
	armOff := g.rng.Intn(armW + 1)
	fillRect(m, cx-torsoW/2-armW, torsoTop+h/40, armW, armH/2, body)
	fillRect(m, cx-torsoW/2-armW-armOff, torsoTop+h/40+armH/2, armW, armH/2, body)
	fillRect(m, cx+torsoW/2, torsoTop+h/40, armW, armH/2, body)
	fillRect(m, cx+torsoW/2+armOff, torsoTop+h/40+armH/2, armW, armH/2, body)
	// Legs: two bars with a gap, one possibly mid-stride.
	stride := g.rng.Intn(max(1, legW))
	fillRect(m, cx-legGap/2-legW, legTop, legW, legH, body)
	fillRect(m, cx+legGap/2-stride/2, legTop, legW, legH, body)
	// Clothing band: torso split into two tones half the time.
	if g.rng.Intn(2) == 0 {
		tone := body - contrast*0.5
		fillRect(m, cx-torsoW/2, torsoTop+torsoH/2, torsoW, torsoH/2, tone)
	}
}

// Positive returns one 64x128 person window.
func (g *Generator) Positive() *imgproc.Image {
	m := imgproc.New(WindowW, WindowH)
	g.fillBackground(m)
	bg := meanOf(m)
	// Person occupies most of the window with a margin, like INRIA
	// normalized crops.
	mw := WindowW - 16 - g.rng.Intn(12)
	mh := WindowH - 16 - g.rng.Intn(16)
	x0 := (WindowW-mw)/2 + g.rng.Intn(5) - 2
	y0 := (WindowH-mh)/2 + g.rng.Intn(5) - 2
	g.drawPerson(m, x0, y0, mw, mh, bg)
	imgproc.BoxBlur(m, 1)
	g.addNoise(m, 0.02)
	m.Clamp01()
	return m
}

// Negative returns one 64x128 clutter window with no person.
func (g *Generator) Negative() *imgproc.Image {
	m := imgproc.New(WindowW, WindowH)
	g.fillBackground(m)
	g.scatterClutter(m, 2+g.rng.Intn(5))
	imgproc.BoxBlur(m, 1)
	g.addNoise(m, 0.02)
	m.Clamp01()
	return m
}

// NegativeImage returns a larger clutter image (for hard negative
// mining and FPPI evaluation on person-free images).
func (g *Generator) NegativeImage(w, h int) *imgproc.Image {
	m := imgproc.New(w, h)
	g.fillBackground(m)
	g.scatterClutter(m, 4+g.rng.Intn(10))
	imgproc.BoxBlur(m, 1)
	g.addNoise(m, 0.02)
	m.Clamp01()
	return m
}

// scatterClutter adds n random distractor shapes.
func (g *Generator) scatterClutter(m *imgproc.Image, n int) {
	for i := 0; i < n; i++ {
		v := g.rng.Float64()
		x := g.rng.Intn(m.W)
		y := g.rng.Intn(m.H)
		switch g.rng.Intn(4) {
		case 0: // bar
			if g.rng.Intn(2) == 0 {
				fillRect(m, x, y, 2+g.rng.Intn(8), 10+g.rng.Intn(m.H/2), v)
			} else {
				fillRect(m, x, y, 10+g.rng.Intn(m.W/2), 2+g.rng.Intn(8), v)
			}
		case 1: // blob
			fillEllipse(m, x, y, 3+g.rng.Intn(12), 3+g.rng.Intn(12), v)
		case 2: // block
			fillRect(m, x, y, 5+g.rng.Intn(20), 5+g.rng.Intn(20), v)
		default: // stripes
			sw := 2 + g.rng.Intn(4)
			for k := 0; k < 4; k++ {
				fillRect(m, x+k*2*sw, y, sw, 8+g.rng.Intn(24), v)
			}
		}
	}
}

// addNoise perturbs every pixel by uniform noise of the given
// amplitude.
func (g *Generator) addNoise(m *imgproc.Image, amp float64) {
	for i := range m.Pix {
		m.Pix[i] += (g.rng.Float64() - 0.5) * 2 * amp
	}
}

func meanOf(m *imgproc.Image) float64 {
	var s float64
	for _, v := range m.Pix {
		s += v
	}
	return s / float64(len(m.Pix))
}

// Scene is a test image with ground truth.
type Scene struct {
	Image *imgproc.Image
	Truth []Box
}

// Scene generates a w x h image containing nPersons persons at scales
// between minH and maxH pixels tall, avoiding overlaps, plus clutter.
func (g *Generator) Scene(w, h, nPersons, minH, maxH int) Scene {
	m := imgproc.New(w, h)
	g.fillBackground(m)
	g.scatterClutter(m, 3+g.rng.Intn(6))
	bg := meanOf(m)
	var truth []Box
	for i := 0; i < nPersons; i++ {
		var b Box
		placed := false
		for attempt := 0; attempt < 40 && !placed; attempt++ {
			ph := minH + g.rng.Intn(max(1, maxH-minH+1))
			pw := ph / 2
			if pw >= w || ph >= h {
				continue
			}
			b = Box{X: g.rng.Intn(w - pw), Y: g.rng.Intn(h - ph), W: pw, H: ph}
			placed = true
			for _, t := range truth {
				if b.IoU(t) > 0.05 {
					placed = false
					break
				}
			}
		}
		if !placed {
			continue
		}
		// The drawn person fills the central portion of the truth box,
		// mirroring the margin of training crops.
		mx := b.W / 8
		my := b.H / 16
		g.drawPerson(m, b.X+mx, b.Y+my, b.W-2*mx, b.H-2*my, bg)
		truth = append(truth, b)
	}
	imgproc.BoxBlur(m, 1)
	g.addNoise(m, 0.02)
	m.Clamp01()
	return Scene{Image: m, Truth: truth}
}

// TrainSet bundles generated training windows.
type TrainSet struct {
	Positives []*imgproc.Image
	Negatives []*imgproc.Image
}

// TrainSet generates nPos positives and nNeg negatives.
func (g *Generator) TrainSet(nPos, nNeg int) TrainSet {
	ts := TrainSet{}
	for i := 0; i < nPos; i++ {
		ts.Positives = append(ts.Positives, g.Positive())
	}
	for i := 0; i < nNeg; i++ {
		ts.Negatives = append(ts.Negatives, g.Negative())
	}
	return ts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
