package dataset

import (
	"reflect"
	"testing"
)

func TestFrameSequenceCatalog(t *testing.T) {
	for _, sc := range SequenceScenarios() {
		frames, err := NewGenerator(3).FrameSequence(sc, 96, 112, 4)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if len(frames) != 4 {
			t.Fatalf("%s: got %d frames, want 4", sc, len(frames))
		}
		for i, f := range frames {
			if f.Image.W != 96 || f.Image.H != 112 {
				t.Fatalf("%s frame %d: %dx%d, want 96x112", sc, i, f.Image.W, f.Image.H)
			}
			for _, v := range f.Image.Pix {
				if v < 0 || v > 1 {
					t.Fatalf("%s frame %d: pixel %v outside [0,1]", sc, i, v)
				}
			}
			if i == 0 && (f.PanX != 0 || f.PanY != 0) {
				t.Fatalf("%s: first frame carries pan hint (%d,%d)", sc, f.PanX, f.PanY)
			}
			for _, b := range f.Truth {
				if b.X < 0 || b.Y < 0 || b.X+b.W > 96 || b.Y+b.H > 112 || b.W <= 0 || b.H <= 0 {
					t.Fatalf("%s frame %d: truth box %+v out of bounds", sc, i, b)
				}
			}
		}
	}
}

func TestFrameSequenceErrors(t *testing.T) {
	g := NewGenerator(1)
	if _, err := g.FrameSequence("no-such-scenario", 96, 96, 3); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := g.FrameSequence("static", 0, 96, 3); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := g.FrameSequence("static", 96, 96, 0); err == nil {
		t.Fatal("zero frames accepted")
	}
}

func TestFrameSequenceDeterministic(t *testing.T) {
	for _, sc := range SequenceScenarios() {
		a, err := NewGenerator(17).FrameSequence(sc, 96, 96, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewGenerator(17).FrameSequence(sc, 96, 96, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !reflect.DeepEqual(a[i].Image.Pix, b[i].Image.Pix) {
				t.Fatalf("%s frame %d: same seed produced different pixels", sc, i)
			}
			if !reflect.DeepEqual(a[i].Truth, b[i].Truth) {
				t.Fatalf("%s frame %d: same seed produced different truth", sc, i)
			}
		}
	}
}

// TestStaticSequenceBitIdentical pins the property the temporal
// detector's 0-alloc steady state rides on: every frame of "static"
// repeats the first bit for bit.
func TestStaticSequenceBitIdentical(t *testing.T) {
	frames, err := NewGenerator(5).FrameSequence("static", 128, 128, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(frames); i++ {
		if !reflect.DeepEqual(frames[i].Image.Pix, frames[0].Image.Pix) {
			t.Fatalf("static frame %d differs from frame 0", i)
		}
		if frames[i].Image == frames[0].Image {
			t.Fatal("static frames share one Image; mutating one frame would corrupt the rest")
		}
	}
}

// TestWalkerSequenceBackgroundStable checks motion stays confined:
// pixels outside the union of consecutive truth boxes (grown by the
// render blur margin) are bit-identical between frames, which is what
// gives the dirty-region tracker something to skip.
func TestWalkerSequenceBackgroundStable(t *testing.T) {
	const w, h, margin = 160, 160, 4
	frames, err := NewGenerator(23).FrameSequence("walkers", w, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(frames); i++ {
		prev, cur := frames[i-1], frames[i]
		changed := func(x, y int) bool {
			for _, f := range []Frame{prev, cur} {
				for _, b := range f.Truth {
					if x >= b.X-margin && x < b.X+b.W+margin &&
						y >= b.Y-margin && y < b.Y+b.H+margin {
						return true
					}
				}
			}
			return false
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if changed(x, y) {
					continue
				}
				if cur.Image.Pix[y*w+x] != prev.Image.Pix[y*w+x] {
					t.Fatalf("frame %d: background pixel (%d,%d) changed outside person boxes", i, x, y)
				}
			}
		}
		if len(cur.Truth) == 0 {
			t.Fatalf("frame %d: walkers frame has no truth boxes", i)
		}
	}
}

// TestPanSequenceShiftProperty verifies the pan hint convention
// new[x, y] == prev[x+PanX, y+PanY] holds exactly over the overlap —
// the precondition the temporal detector's shift fast path verifies
// per frame before trusting it.
func TestPanSequenceShiftProperty(t *testing.T) {
	const w, h = 160, 144
	frames, err := NewGenerator(29).FrameSequence("pan", w, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(frames); i++ {
		f := frames[i]
		if f.PanX != PanStep || f.PanY != 0 {
			t.Fatalf("frame %d: pan hint (%d,%d), want (%d,0)", i, f.PanX, f.PanY, PanStep)
		}
		prev := frames[i-1].Image
		for y := 0; y < h; y++ {
			for x := 0; x+f.PanX < w; x++ {
				if f.Image.Pix[y*w+x] != prev.Pix[y*w+x+f.PanX] {
					t.Fatalf("frame %d: shift property fails at (%d,%d)", i, x, y)
				}
			}
		}
	}
}

// TestJitterSequenceHints checks jitter frames carry the frame-delta
// pan hints and the offsets actually move the viewport.
func TestJitterSequenceHints(t *testing.T) {
	frames, err := NewGenerator(31).FrameSequence("jitter", 128, 128, 6)
	if err != nil {
		t.Fatal(err)
	}
	moved, changed := false, false
	for i := 1; i < len(frames); i++ {
		if frames[i].PanX != 0 || frames[i].PanY != 0 {
			moved = true
		}
		if !reflect.DeepEqual(frames[i].Image.Pix, frames[i-1].Image.Pix) {
			changed = true
		}
	}
	if !moved {
		t.Fatal("jitter sequence never reported a pan delta")
	}
	if !changed {
		t.Fatal("jitter sequence frames never changed")
	}
}

// TestLightRampChangesEveryPixelRegion confirms the ramp really is the
// full-recompute stress case: consecutive frames differ broadly.
func TestLightRampChangesEveryPixelRegion(t *testing.T) {
	const w, h = 96, 96
	frames, err := NewGenerator(37).FrameSequence("lightramp", w, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i, v := range frames[1].Image.Pix {
		if v != frames[0].Image.Pix[i] {
			diff++
		}
	}
	if diff < w*h/2 {
		t.Fatalf("lightramp changed only %d of %d pixels between frames", diff, w*h)
	}
}
