// Parrot mimicry: auto-generates labeled orientation data (Fig. 3),
// trains the 2-layer Eedn parrot to behave like the HoG cell
// extractor, and reports mimicry fidelity and the spike-precision
// sweep of Fig. 6.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/parrot"
	"repro/internal/truenorth"
)

func main() {
	samples := flag.Int("samples", 8000, "auto-generated training samples")
	epochs := flag.Int("epochs", 80, "training epochs")
	hidden := flag.Int("hidden", 512, "hidden threshold-layer width")
	flag.Parse()

	opt := parrot.DefaultTrainOptions()
	opt.Samples = *samples
	opt.Hidden = *hidden
	opt.Train.Epochs = *epochs
	opt.Train.Verbose = func(epoch int, loss float64) {
		if (epoch+1)%20 == 0 {
			fmt.Printf("  epoch %d: hinge loss %.4f\n", epoch+1, loss)
		}
	}

	fmt.Printf("training parrot on %d auto-generated samples (%d hidden units)...\n",
		*samples, *hidden)
	ex, loss, err := parrot.Train(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final training loss: %.4f\n\n", loss)

	val, err := parrot.GenerateSamples(600, 12345)
	if err != nil {
		log.Fatal(err)
	}

	r, err := parrot.MimicryCorrelation(ex, val)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mimicry correlation vs reference HoG histograms: %.3f\n", r)
	fmt.Printf("orientation-class accuracy (full precision): %.3f\n\n",
		parrot.ClassAccuracy(ex, val))

	fmt.Println("spike-precision sweep (Fig. 6):")
	fmt.Println("  spikes  bits  accuracy(det)  accuracy(stochastic)")
	for _, w := range []int{32, 16, 8, 4, 2, 1} {
		det, err := parrot.NewExtractor(ex.Net, w, false, nil)
		if err != nil {
			log.Fatal(err)
		}
		sto, err := parrot.NewExtractor(ex.Net, w, true, rand.New(rand.NewSource(int64(w))))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6d  %4d  %12.3f  %19.3f\n",
			w, truenorth.SpikeBits(w),
			parrot.ClassAccuracy(det, val), parrot.ClassAccuracy(sto, val))
	}
}
