// Quickstart: co-train a HoG + SVM pedestrian detector on the
// synthetic substrate and run it on a scene — the minimal end-to-end
// use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/hog"
)

func main() {
	// 1. A feature extractor: the full-precision NApprox HoG with L2
	//    block normalization (18 orientation bins, count voting).
	extractor, err := core.NewExtractor(core.ParadigmNApproxFP, hog.NormL2)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Synthetic training windows (the INRIA stand-in).
	train := dataset.NewGenerator(1).TrainSet(80, 160)

	// 3. Co-train the partition: extract descriptors, fit a linear
	//    SVM, mine hard negatives from person-free images, refit.
	part, err := core.TrainSVMPartition(core.ParadigmNApproxFP, extractor, train,
		core.DefaultSVMTrainConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Wrap it as a sliding-window detector (1.1x pyramid, NMS).
	detector, err := part.Detector(detect.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 5. Detect on a fresh scene with ground truth.
	scene := dataset.NewGenerator(99).Scene(480, 360, 2, 140, 300)
	detections := detector.Detect(scene.Image)

	fmt.Printf("scene: %d persons, detector returned %d boxes\n",
		len(scene.Truth), len(detections))
	for i, d := range detections {
		hit := ""
		for _, t := range scene.Truth {
			if d.Box.IoU(t) >= 0.5 {
				hit = " <- matches ground truth"
			}
		}
		fmt.Printf("  #%d score %+.2f at (%d,%d) %dx%d%s\n",
			i+1, d.Score, d.Box.X, d.Box.Y, d.Box.W, d.Box.H, hit)
	}
}
