// Eedn deployment: trains a small trinary-weight threshold network,
// maps it onto TrueNorth cores (splitters, typed +/- axon lines, a
// clock chain gating per-neuron bias pulses) and verifies that the
// spiking hardware reproduces the software forward pass bit-exactly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/eedn"
	"repro/internal/truenorth"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// A 2-layer all-threshold network: 16 inputs -> 32 -> 8.
	l1 := eedn.NewDense(16, 32, rng)
	l2 := eedn.NewDense(32, 8, rng)
	net, err := eedn.NewNetwork(l1, l2)
	if err != nil {
		log.Fatal(err)
	}

	// Teach it a simple task so the weights are meaningful: output j
	// fires when input 2j is brighter than input 2j+1.
	var xs, ys [][]float64
	for i := 0; i < 400; i++ {
		x := make([]float64, 16)
		y := make([]float64, 8)
		for j := 0; j < 8; j++ {
			a, b := rng.Float64(), rng.Float64()
			x[2*j], x[2*j+1] = a, b
			if a > b {
				y[j] = 1
			}
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	cfg := eedn.DefaultTrainConfig()
	cfg.Epochs = 60
	loss, err := net.Train(xs, ys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained 16->32->8 Eedn net, MSE %.4f\n", loss)

	dep, err := eedn.Deploy(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed on %d TrueNorth cores (latency %d ticks/pass)\n",
		dep.Model.NumCores(), dep.Latency)
	fmt.Print(dep.Usage.String())

	sim, err := truenorth.NewSimulator(dep.Model, 1)
	if err != nil {
		log.Fatal(err)
	}

	match, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		frame := make([]float64, 16)
		for i := range frame {
			frame[i] = float64(rng.Intn(2))
		}
		hw, err := dep.RunPass(sim, frame)
		if err != nil {
			log.Fatal(err)
		}
		sw := net.Forward(frame)
		for j := range sw {
			total++
			if hw[j] == sw[j] {
				match++
			}
		}
	}
	fmt.Printf("hardware/software agreement over 200 binary passes: %d/%d outputs\n",
		match, total)
}
