// NApprox on the TrueNorth simulator: builds the spiking HoG cell
// corelet (Sec. 3.1), runs it against the equivalent software model on
// synthetic cells, and reports the output correlation — the paper's
// "over 99.5% correlation" validation — along with the per-corelet
// core budget.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/hog"
	"repro/internal/imgproc"
	"repro/internal/napprox"
	"repro/internal/stats"
	"repro/internal/truenorth"
)

func main() {
	nCells := flag.Int("cells", 1000, "validation cells (the paper uses a thousand)")
	flag.Parse()

	cfg := napprox.TrueNorthConfig()
	module, err := napprox.BuildCellModule(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NApprox cell corelet: %d TrueNorth cores (paper module: 26)\n", module.Cores())
	fmt.Println("core usage by sub-corelet:")
	fmt.Print(module.Usage.String())

	sim, err := truenorth.NewSimulator(module.Model, 1)
	if err != nil {
		log.Fatal(err)
	}

	swCfg := cfg
	swCfg.Mode = napprox.VoteRace // the software model equivalent to the HW
	sw, err := napprox.New(swCfg, hog.NormNone)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var hw, ref []float64
	cell := imgproc.New(10, 10)
	for i := 0; i < *nCells; i++ {
		// Alternate oriented and unstructured content.
		if i%2 == 0 {
			theta := rng.Float64() * 2 * math.Pi
			amp := 0.05 + rng.Float64()*0.25
			for y := 0; y < 10; y++ {
				for x := 0; x < 10; x++ {
					v := 0.5 + amp*(math.Cos(theta)*float64(x)-math.Sin(theta)*float64(y))/2
					cell.Set(x, y, v+(rng.Float64()-0.5)*0.08)
				}
			}
		} else {
			for j := range cell.Pix {
				cell.Pix[j] = rng.Float64()
			}
		}
		cell.Clamp01()

		h1, err := module.Extract(sim, cell)
		if err != nil {
			log.Fatal(err)
		}
		h2, err := sw.CellHistogram(cell)
		if err != nil {
			log.Fatal(err)
		}
		hw = append(hw, h1...)
		ref = append(ref, h2...)
		if (i+1)%200 == 0 {
			fmt.Printf("  %d cells simulated...\n", i+1)
		}
	}

	r, err := stats.Pearson(hw, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhardware vs software-model correlation over %d cells: %.4f\n", *nCells, r)
	fmt.Println("paper (Sec. 3.1): over 99.5% at matched quantization width")

	e := truenorth.CollectEnergy(sim)
	fmt.Printf("last-run activity: %d synaptic events, %d fires, %d routed spikes\n",
		e.SynapticEvents, e.NeuronFires, e.SpikesRouted)
}
