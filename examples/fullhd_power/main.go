// Full-HD power sizing (Sec. 5.2): walks through the paper's
// throughput math — pyramid cell counts, per-module throughput at each
// spike precision, chip counts and power — and prints the resulting
// Table 2 with the 6.5x-208x headline ratios.
package main

import (
	"fmt"
	"log"

	"repro/internal/power"
)

func main() {
	levels := power.PyramidLevels(1920, 1080, 1.5, 6)
	fmt.Println("full-HD sliding-window pyramid (cells of 8x8 pixels):")
	total := 0
	for i, l := range levels {
		fmt.Printf("  level %d: %3d x %3d = %6d cells\n", i, l[0], l[1], l[0]*l[1])
		total += l[0] * l[1]
	}
	fmt.Printf("  total: %d cells/frame -> %.3g cells/s @ %.0f fps\n\n",
		total, float64(total)*power.FullHDFrameRate, power.FullHDFrameRate)

	cellsPerSec := float64(total) * power.FullHDFrameRate
	fmt.Println("per-design sizing:")
	for _, d := range []struct {
		name   string
		cores  int
		window int
	}{
		{"NApprox (64-spike)", power.NApproxCoresPerModule, 64},
		{"Parrot (32-spike)", power.ParrotCoresPerCell, 32},
		{"Parrot (4-spike)", power.ParrotCoresPerCell, 4},
		{"Parrot (1-spike)", power.ParrotCoresPerCell, 1},
	} {
		est, err := power.SizeTrueNorth(d.name, d.cores, d.window, cellsPerSec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %7.1f cells/s/module  %9.0f modules  %8.0f cores  %6.1f chips  %8.3f W\n",
			d.name, power.ModuleThroughput(d.window), est.Modules, est.Cores, est.Chips, est.Watts)
	}

	lo, hi, err := power.PowerRatios()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nParrot power advantage over NApprox: %.1fx to %.0fx (paper: 6.5x-208x)\n", lo, hi)
	fmt.Printf("FPGA baseline for reference: %.2f W logic, %.2f W system\n",
		power.FPGALogicWatts, power.FPGASystemWatts)
}
